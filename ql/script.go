package ql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	hmts "github.com/dsms/hmts"
)

// CreateSource is a parsed CREATE SOURCE statement:
//
//	CREATE SOURCE name COUNT n RATE hz [KEYS lo hi] [SEED s] [STAMPED]
//
// RATE 0 emits as fast as downstream accepts; STAMPED selects the
// deterministic virtual-time source.
type CreateSource struct {
	Name         string
	Count        int
	RateHz       float64
	KeyLo, KeyHi int64
	Seed         uint64
	Stamped      bool
}

// SetMode is a parsed SET MODE statement:
//
//	SET MODE gts|ots|di|pure-di|hmts [fifo|chain|roundrobin|maxqueue]
type SetMode struct {
	Mode     hmts.Mode
	Strategy string
}

// Script is a parsed sequence of statements: any number of CREATE SOURCE
// and SELECT statements plus at most one SET MODE (defaulting to HMTS).
type Script struct {
	Sources  []CreateSource
	Queries  []*Query
	Mode     hmts.Mode
	Strategy string
	modeSet  bool
}

// ParseScript parses a ';'-separated statement list. Blank statements and
// line comments starting with "--" are ignored.
func ParseScript(input string) (*Script, error) {
	s := &Script{Mode: hmts.ModeHMTS}
	var clean []string
	for _, line := range strings.Split(input, "\n") {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		clean = append(clean, line)
	}
	for i, stmt := range strings.Split(strings.Join(clean, "\n"), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if err := s.parseStatement(stmt); err != nil {
			return nil, fmt.Errorf("statement %d: %w", i+1, err)
		}
	}
	if len(s.Queries) == 0 {
		return nil, fmt.Errorf("ql: script has no SELECT statement")
	}
	return s, nil
}

func (s *Script) parseStatement(stmt string) error {
	first := strings.ToLower(strings.Fields(stmt)[0])
	switch first {
	case "select":
		q, err := Parse(stmt)
		if err != nil {
			return err
		}
		s.Queries = append(s.Queries, q)
		return nil
	case "create":
		cs, err := parseCreateSource(stmt)
		if err != nil {
			return err
		}
		for _, prev := range s.Sources {
			if prev.Name == cs.Name {
				return fmt.Errorf("ql: duplicate source %q", cs.Name)
			}
		}
		s.Sources = append(s.Sources, cs)
		return nil
	case "set":
		sm, err := parseSetMode(stmt)
		if err != nil {
			return err
		}
		if s.modeSet {
			return fmt.Errorf("ql: SET MODE given twice")
		}
		s.modeSet = true
		s.Mode, s.Strategy = sm.Mode, sm.Strategy
		return nil
	}
	return fmt.Errorf("ql: unknown statement %q", first)
}

// parseCreateSource parses: CREATE SOURCE name [options...].
func parseCreateSource(stmt string) (CreateSource, error) {
	f := strings.Fields(stmt)
	lower := func(i int) string {
		if i < len(f) {
			return strings.ToLower(f[i])
		}
		return ""
	}
	if len(f) < 3 || lower(0) != "create" || lower(1) != "source" {
		return CreateSource{}, fmt.Errorf("ql: malformed CREATE SOURCE")
	}
	cs := CreateSource{Name: strings.ToLower(f[2]), KeyHi: 1_000_000, Seed: 1}
	i := 3
	var err error
	for i < len(f) {
		switch lower(i) {
		case "count":
			cs.Count, err = strconv.Atoi(arg(f, i+1))
			i += 2
		case "rate":
			cs.RateHz, err = strconv.ParseFloat(arg(f, i+1), 64)
			i += 2
		case "keys":
			cs.KeyLo, err = strconv.ParseInt(arg(f, i+1), 10, 64)
			if err == nil {
				cs.KeyHi, err = strconv.ParseInt(arg(f, i+2), 10, 64)
			}
			i += 3
		case "seed":
			cs.Seed, err = strconv.ParseUint(arg(f, i+1), 10, 64)
			i += 2
		case "stamped":
			cs.Stamped = true
			i++
		default:
			return CreateSource{}, fmt.Errorf("ql: unknown CREATE SOURCE option %q", f[i])
		}
		if err != nil {
			return CreateSource{}, fmt.Errorf("ql: bad CREATE SOURCE option %q: %w", lower(i-2), err)
		}
	}
	if cs.Count <= 0 {
		return CreateSource{}, fmt.Errorf("ql: CREATE SOURCE needs COUNT > 0")
	}
	if cs.KeyHi < cs.KeyLo {
		return CreateSource{}, fmt.Errorf("ql: CREATE SOURCE KEYS hi < lo")
	}
	return cs, nil
}

func arg(f []string, i int) string {
	if i < 0 || i >= len(f) {
		return ""
	}
	return f[i]
}

// parseSetMode parses: SET MODE m [strategy].
func parseSetMode(stmt string) (SetMode, error) {
	f := strings.Fields(strings.ToLower(stmt))
	if len(f) < 3 || f[0] != "set" || f[1] != "mode" {
		return SetMode{}, fmt.Errorf("ql: malformed SET MODE")
	}
	var sm SetMode
	switch f[2] {
	case "gts":
		sm.Mode = hmts.ModeGTS
	case "ots":
		sm.Mode = hmts.ModeOTS
	case "di":
		sm.Mode = hmts.ModeDI
	case "pure-di", "puredi":
		sm.Mode = hmts.ModePureDI
	case "hmts":
		sm.Mode = hmts.ModeHMTS
	default:
		return SetMode{}, fmt.Errorf("ql: unknown mode %q", f[2])
	}
	if len(f) > 3 {
		switch f[3] {
		case "fifo", "chain", "roundrobin", "maxqueue":
			sm.Strategy = f[3]
		default:
			return SetMode{}, fmt.Errorf("ql: unknown strategy %q", f[3])
		}
	}
	if len(f) > 4 {
		return SetMode{}, fmt.Errorf("ql: trailing tokens after SET MODE")
	}
	return sm, nil
}

// QueryResult is the outcome of one script query.
type QueryResult struct {
	Query   string
	Count   uint64
	Sample  []hmts.Element // up to SampleCap earliest results
	Elapsed time.Duration
}

// SampleCap bounds how many results Execute retains per query.
const SampleCap = 16

// Execute builds the script's sources and queries into one shared engine,
// runs it to completion under the script's mode, and returns one result
// per query (in statement order).
func (s *Script) Execute() ([]QueryResult, error) {
	eng := hmts.New()
	sources := make(map[string]*hmts.Stream, len(s.Sources))
	for _, cs := range s.Sources {
		gen := hmts.UniformKeys(cs.KeyLo, cs.KeyHi, cs.Seed)
		var spec hmts.SourceSpec
		if cs.Stamped {
			spec = hmts.GenerateStamped(cs.Count, cs.RateHz, gen)
		} else {
			spec = hmts.Generate(cs.Count, cs.RateHz, gen)
		}
		sources[cs.Name] = eng.Source(cs.Name, spec)
	}
	sinks := make([]*sampleSink, len(s.Queries))
	for i, q := range s.Queries {
		out, err := Plan(eng, sources, q)
		if err != nil {
			return nil, err
		}
		sinks[i] = newSampleSink()
		out.Into(fmt.Sprintf("script-q%d", i), sinks[i])
	}
	start := time.Now()
	if err := eng.Run(hmts.RunConfig{Mode: s.Mode, Strategy: s.Strategy}); err != nil {
		return nil, err
	}
	eng.Wait()
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(s.Queries))
	for i, q := range s.Queries {
		sinks[i].wait()
		results[i] = QueryResult{
			Query:   q.String(),
			Count:   sinks[i].count,
			Sample:  sinks[i].sample,
			Elapsed: elapsed,
		}
	}
	return results, nil
}

// sampleSink counts results and keeps the first few.
type sampleSink struct {
	count  uint64
	sample []hmts.Element
	done   chan struct{}
}

func newSampleSink() *sampleSink { return &sampleSink{done: make(chan struct{})} }

// Process implements hmts.Sink; the engine guarantees a single driver per
// sink edge here (each query has its own sink node fed by one stream).
func (s *sampleSink) Process(_ int, e hmts.Element) {
	s.count++
	if len(s.sample) < SampleCap {
		s.sample = append(s.sample, e)
	}
}

// Done implements hmts.Sink.
func (s *sampleSink) Done(int) { close(s.done) }

func (s *sampleSink) wait() { <-s.done }
