package ql

import (
	"fmt"
	"math"
	"time"

	"github.com/dsms/hmts/internal/stream"
)

// Field names an element attribute.
type Field int

// Element attributes addressable in queries.
const (
	FieldKey Field = iota
	FieldVal
	FieldTS
	FieldStar // '*' in select lists
)

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldKey:
		return "key"
	case FieldVal:
		return "val"
	case FieldTS:
		return "ts"
	case FieldStar:
		return "*"
	}
	return fmt.Sprintf("Field(%d)", int(f))
}

// Agg names an aggregate function, or AggNone for plain selection.
type Agg int

// Aggregate functions.
const (
	AggNone Agg = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (a Agg) String() string {
	names := [...]string{"none", "count", "sum", "avg", "min", "max"}
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("Agg(%d)", int(a))
}

// Query is the parsed form of a SELECT statement.
type Query struct {
	Agg        Agg
	AggField   Field // field under the aggregate, or projected field
	From       string
	Join       string        // second source, empty if none
	JoinWin    time.Duration // join window (required with Join)
	Where      Expr          // nil if absent
	GroupBy    bool          // GROUP BY KEY
	Window     time.Duration // aggregate time window
	WindowRows int           // aggregate ROWS window (exclusive with Window)
	Having     Expr          // filter over aggregate output (val = aggregate, key = group)
	// Shards key-partitions the query's stateful operator across this many
	// replicas (SHARD n). Applies to the grouped aggregate when present,
	// otherwise to the join; 0 means unsharded.
	Shards int
}

// String renders the query canonically.
func (q *Query) String() string {
	s := "select "
	switch q.Agg {
	case AggNone:
		s += q.AggField.String()
	default:
		s += q.Agg.String() + "(" + q.AggField.String() + ")"
	}
	s += " from " + q.From
	if q.Join != "" {
		s += fmt.Sprintf(" join %s window %v", q.Join, q.JoinWin)
	}
	if q.Where != nil {
		s += " where " + q.Where.String()
	}
	if q.GroupBy {
		s += " group by key"
	}
	if q.Window > 0 {
		s += fmt.Sprintf(" window %v", q.Window)
	}
	if q.WindowRows > 0 {
		s += fmt.Sprintf(" window %d rows", q.WindowRows)
	}
	if q.Having != nil {
		s += " having " + q.Having.String()
	}
	if q.Shards > 0 {
		s += fmt.Sprintf(" shard %d", q.Shards)
	}
	return s
}

// Expr is a typed expression over an element. Num evaluates numeric
// expressions; Bool evaluates predicates. IsBool reports which evaluation
// is legal.
type Expr interface {
	fmt.Stringer
	IsBool() bool
	Num(e stream.Element) float64
	Bool(e stream.Element) bool
}

// numLit is a numeric literal.
type numLit float64

func (n numLit) IsBool() bool               { return false }
func (n numLit) Num(stream.Element) float64 { return float64(n) }
func (n numLit) Bool(stream.Element) bool   { panic("ql: literal used as predicate") }
func (n numLit) String() string             { return fmt.Sprintf("%g", float64(n)) }

// fieldRef reads an element attribute.
type fieldRef Field

func (f fieldRef) IsBool() bool { return false }
func (f fieldRef) Num(e stream.Element) float64 {
	switch Field(f) {
	case FieldKey:
		return float64(e.Key)
	case FieldVal:
		return e.Val
	case FieldTS:
		return float64(e.TS)
	}
	panic("ql: bad field reference")
}
func (f fieldRef) Bool(stream.Element) bool { panic("ql: field used as predicate") }
func (f fieldRef) String() string           { return Field(f).String() }

// binary is an arithmetic or comparison operator.
type binary struct {
	op   string
	l, r Expr
}

func (b *binary) IsBool() bool {
	switch b.op {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (b *binary) Num(e stream.Element) float64 {
	l, r := b.l.Num(e), b.r.Num(e)
	switch b.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r
	case "%":
		return math.Mod(l, r)
	}
	panic("ql: " + b.op + " is not numeric")
}

func (b *binary) Bool(e stream.Element) bool {
	l, r := b.l.Num(e), b.r.Num(e)
	switch b.op {
	case "=":
		return l == r
	case "!=":
		return l != r
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	}
	panic("ql: " + b.op + " is not a comparison")
}

func (b *binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r)
}

// logical is AND/OR over predicates.
type logical struct {
	op   string // "and" | "or"
	l, r Expr
}

func (l *logical) IsBool() bool               { return true }
func (l *logical) Num(stream.Element) float64 { panic("ql: logical expression used as number") }
func (l *logical) Bool(e stream.Element) bool {
	if l.op == "and" {
		return l.l.Bool(e) && l.r.Bool(e)
	}
	return l.l.Bool(e) || l.r.Bool(e)
}
func (l *logical) String() string { return fmt.Sprintf("(%s %s %s)", l.l, l.op, l.r) }

// not negates a predicate.
type not struct{ x Expr }

func (n *not) IsBool() bool               { return true }
func (n *not) Num(stream.Element) float64 { panic("ql: NOT used as number") }
func (n *not) Bool(e stream.Element) bool { return !n.x.Bool(e) }
func (n *not) String() string             { return fmt.Sprintf("(not %s)", n.x) }

// neg negates a number.
type neg struct{ x Expr }

func (n *neg) IsBool() bool                 { return false }
func (n *neg) Num(e stream.Element) float64 { return -n.x.Num(e) }
func (n *neg) Bool(stream.Element) bool     { panic("ql: negation used as predicate") }
func (n *neg) String() string               { return fmt.Sprintf("(-%s)", n.x) }
