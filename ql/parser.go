package ql

import (
	"fmt"
	"strconv"
	"time"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	p.acceptSym(";") // trailing semicolon is optional
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %q after query", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

// expectKw requires the keyword.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

// query := SELECT sel FROM ident [JOIN ident WINDOW dur] [WHERE expr]
//
//	[GROUP BY KEY] [WINDOW dur] [HAVING expr] [SHARD n]
func (p *parser) query() (*Query, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.selectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	src, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.From = src
	if p.acceptKw("join") {
		other, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Join = other
		if err := p.expectKw("window"); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		q.JoinWin = d
	}
	if p.acceptKw("where") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !e.IsBool() {
			return nil, p.errf("WHERE needs a boolean expression, got %s", e)
		}
		q.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		if err := p.expectKw("key"); err != nil {
			return nil, err
		}
		q.GroupBy = true
	}
	if p.acceptKw("window") {
		// Either a duration ("500ms") or a row count ("100 ROWS").
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected window size, found %q", p.cur().text)
		}
		if n, err := strconv.Atoi(p.cur().text); err == nil {
			p.i++
			if err := p.expectKw("rows"); err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, fmt.Errorf("ql: ROWS window must be positive")
			}
			q.WindowRows = n
		} else {
			d, err := p.duration()
			if err != nil {
				return nil, err
			}
			q.Window = d
		}
	}
	if p.acceptKw("having") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !e.IsBool() {
			return nil, p.errf("HAVING needs a boolean expression, got %s", e)
		}
		q.Having = e
	}
	if p.acceptKw("shard") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected shard count, found %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("ql: SHARD count must be a positive integer")
		}
		q.Shards = n
	}
	// Semantic checks.
	if q.Shards > 0 && !(q.GroupBy && q.Agg != AggNone) && q.Join == "" {
		return nil, fmt.Errorf("ql: SHARD requires a grouped aggregate or a join (key partitioning)")
	}
	if q.Agg != AggNone && q.Window == 0 && q.WindowRows == 0 {
		return nil, fmt.Errorf("ql: aggregate query needs WINDOW")
	}
	if q.Having != nil && q.Agg == AggNone {
		return nil, fmt.Errorf("ql: HAVING requires an aggregate")
	}
	if q.Agg == AggNone && q.GroupBy {
		return nil, fmt.Errorf("ql: GROUP BY requires an aggregate")
	}
	if q.Agg == AggNone && (q.Window != 0 || q.WindowRows != 0) {
		return nil, fmt.Errorf("ql: WINDOW requires an aggregate (joins take their own window)")
	}
	return q, nil
}

func (p *parser) selectList(q *Query) error {
	if p.acceptSym("*") {
		q.Agg, q.AggField = AggNone, FieldStar
		return nil
	}
	if p.cur().kind != tokIdent {
		return p.errf("expected select list, found %q", p.cur().text)
	}
	word := p.next().text
	aggs := map[string]Agg{"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax}
	if a, ok := aggs[word]; ok && p.acceptSym("(") {
		q.Agg = a
		if p.acceptSym("*") {
			q.AggField = FieldStar
		} else {
			f, err := p.fieldWord()
			if err != nil {
				return err
			}
			q.AggField = f
		}
		return p.expectSym(")")
	}
	f, err := fieldOf(word)
	if err != nil {
		return p.errf("%v", err)
	}
	q.Agg, q.AggField = AggNone, f
	return nil
}

func (p *parser) fieldWord() (Field, error) {
	if p.cur().kind != tokIdent {
		return 0, p.errf("expected field, found %q", p.cur().text)
	}
	return fieldOf(p.next().text)
}

func fieldOf(w string) (Field, error) {
	switch w {
	case "key":
		return FieldKey, nil
	case "val", "value":
		return FieldVal, nil
	case "ts", "time":
		return FieldTS, nil
	}
	return 0, fmt.Errorf("unknown field %q (want key, val or ts)", w)
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

// duration parses a Go duration literal token.
func (p *parser) duration() (time.Duration, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected duration, found %q", p.cur().text)
	}
	d, err := time.ParseDuration(p.next().text)
	if err != nil {
		return 0, fmt.Errorf("ql: bad duration: %w", err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("ql: duration must be positive")
	}
	return d, nil
}

// Expression parsing, standard precedence climbing.

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		if !l.IsBool() || !r.IsBool() {
			return nil, p.errf("OR needs boolean operands")
		}
		l = &logical{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		if !l.IsBool() || !r.IsBool() {
			return nil, p.errf("AND needs boolean operands")
		}
		l = &logical{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		if !x.IsBool() {
			return nil, p.errf("NOT needs a boolean operand")
		}
		return &not{x: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	for _, opName := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.acceptSym(opName) {
			r, err := p.sumExpr()
			if err != nil {
				return nil, err
			}
			if l.IsBool() || r.IsBool() {
				return nil, p.errf("comparison needs numeric operands")
			}
			if opName == "<>" {
				opName = "!="
			}
			return &binary{op: opName, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) sumExpr() (Expr, error) {
	l, err := p.termExpr()
	if err != nil {
		return nil, err
	}
	for {
		var opName string
		switch {
		case p.acceptSym("+"):
			opName = "+"
		case p.acceptSym("-"):
			opName = "-"
		default:
			return l, nil
		}
		r, err := p.termExpr()
		if err != nil {
			return nil, err
		}
		if l.IsBool() || r.IsBool() {
			return nil, p.errf("arithmetic needs numeric operands")
		}
		l = &binary{op: opName, l: l, r: r}
	}
}

func (p *parser) termExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var opName string
		switch {
		case p.acceptSym("*"):
			opName = "*"
		case p.acceptSym("/"):
			opName = "/"
		case p.acceptSym("%"):
			opName = "%"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if l.IsBool() || r.IsBool() {
			return nil, p.errf("arithmetic needs numeric operands")
		}
		l = &binary{op: opName, l: l, r: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if x.IsBool() {
			return nil, p.errf("negation needs a numeric operand")
		}
		return &neg{x: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return numLit(v), nil
	case t.kind == tokIdent:
		f, err := fieldOf(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.i++
		return fieldRef(f), nil
	case p.acceptSym("("):
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSym(")")
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
