package ql

import (
	"fmt"

	hmts "github.com/dsms/hmts"
	"github.com/dsms/hmts/internal/op"
	"github.com/dsms/hmts/internal/stream"
)

// Plan compiles a parsed query onto the engine's shared graph. The sources
// map names registered source streams (so multiple queries over the same
// source share it, the Figure 1 pattern). The returned stream is the
// query's result; the caller attaches a sink.
func Plan(eng *hmts.Engine, sources map[string]*hmts.Stream, q *Query) (*hmts.Stream, error) {
	s, ok := sources[q.From]
	if !ok {
		return nil, fmt.Errorf("ql: unknown source %q", q.From)
	}
	if q.Join != "" {
		other, ok := sources[q.Join]
		if !ok {
			return nil, fmt.Errorf("ql: unknown source %q", q.Join)
		}
		s = s.Join(fmt.Sprintf("join(%s,%s)", q.From, q.Join), other, q.JoinWin, nil)
		// SHARD partitions the join unless a grouped aggregate follows — the
		// aggregate is then the stateful operator the clause addresses.
		if q.Shards > 0 && !(q.GroupBy && q.Agg != AggNone) {
			s = s.Shard(q.Shards)
		}
	}
	if q.Where != nil {
		pred := q.Where
		s = s.Where("where "+pred.String(), func(e stream.Element) bool { return pred.Bool(e) })
	}
	switch q.Agg {
	case AggNone:
		switch q.AggField {
		case FieldStar:
			// identity
		case FieldKey:
			s = s.Map("select key", func(e stream.Element) stream.Element {
				return stream.Element{TS: e.TS, Key: e.Key}
			})
		case FieldVal:
			s = s.Map("select val", func(e stream.Element) stream.Element {
				return stream.Element{TS: e.TS, Val: e.Val}
			})
		case FieldTS:
			s = s.Map("select ts", func(e stream.Element) stream.Element {
				return stream.Element{TS: e.TS, Val: float64(e.TS)}
			})
		}
	default:
		kind, err := aggKind(q.Agg)
		if err != nil {
			return nil, err
		}
		// Aggregates other than COUNT operate on Val; map the chosen
		// field into Val first if needed.
		if q.Agg != AggCount && q.AggField == FieldKey {
			s = s.Map("val=key", func(e stream.Element) stream.Element {
				e.Val = float64(e.Key)
				return e
			})
		}
		var group func(stream.Element) int64
		if q.GroupBy {
			group = func(e stream.Element) int64 { return e.Key }
		}
		aggName := fmt.Sprintf("%v(%v)", q.Agg, q.AggField)
		if q.WindowRows > 0 {
			s = s.AggregateRows(aggName, kind, q.WindowRows, group)
		} else {
			s = s.Aggregate(aggName, kind, q.Window, group)
		}
		if q.Shards > 0 && q.GroupBy {
			s = s.Shard(q.Shards)
		}
		if q.Having != nil {
			having := q.Having
			s = s.Where("having "+having.String(), func(e stream.Element) bool { return having.Bool(e) })
		}
	}
	return s, nil
}

func aggKind(a Agg) (op.AggKind, error) {
	switch a {
	case AggCount:
		return op.AggCount, nil
	case AggSum:
		return op.AggSum, nil
	case AggAvg:
		return op.AggAvg, nil
	case AggMin:
		return op.AggMin, nil
	case AggMax:
		return op.AggMax, nil
	}
	return 0, fmt.Errorf("ql: unsupported aggregate %d", a)
}
