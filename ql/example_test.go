package ql_test

import (
	"fmt"

	hmts "github.com/dsms/hmts"
	"github.com/dsms/hmts/ql"
)

// ExampleParse shows the canonical rendering of a parsed query.
func ExampleParse() {
	q, err := ql.Parse("SELECT avg(val) FROM sensors WHERE key % 4 = 0 GROUP BY KEY WINDOW 60s HAVING val > 10")
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output: select avg(val) from sensors where ((key % 4) = 0) group by key window 1m0s having (val > 10)
}

// ExampleScript_Execute runs a complete script: sources, queries, mode.
func ExampleScript_Execute() {
	script, err := ql.ParseScript(`
		CREATE SOURCE s COUNT 1000 RATE 0 KEYS 0 9 SEED 3 STAMPED;
		SELECT * FROM s WHERE key = 0;
		SET MODE gts;
	`)
	if err != nil {
		panic(err)
	}
	results, err := script.Execute()
	if err != nil {
		panic(err)
	}
	fmt.Println(results[0].Query, "->", results[0].Count > 50 && results[0].Count < 150)
	// Output: select * from s where (key = 0) -> true
}

// ExamplePlan compiles a parsed query onto an engine by hand.
func ExamplePlan() {
	eng := hmts.New()
	src := eng.Source("s", hmts.GenerateStamped(100, 1000, hmts.SeqKeys()))
	q, _ := ql.Parse("SELECT * FROM s WHERE key < 10")
	out, err := ql.Plan(eng, map[string]*hmts.Stream{"s": src}, q)
	if err != nil {
		panic(err)
	}
	sink := out.Collect("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeDI})
	eng.Wait()
	sink.Wait()
	fmt.Println(sink.Len())
	// Output: 10
}
