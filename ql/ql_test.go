package ql

import (
	"strings"
	"testing"
	"time"

	hmts "github.com/dsms/hmts"
	"github.com/dsms/hmts/internal/stream"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical rendering; "" means parse error expected
	}{
		{"SELECT * FROM s", "select * from s"},
		{"select key from s;", "select key from s"},
		{"SELECT avg(val) FROM s WINDOW 60s", "select avg(val) from s window 1m0s"},
		{"SELECT count(*) FROM s WINDOW 1m GROUP BY KEY", ""}, // GROUP BY before WINDOW... see below
		{"SELECT count(*) FROM s GROUP BY KEY WINDOW 1m", "select count(*) from s group by key window 1m0s"},
		{"SELECT * FROM a JOIN b WINDOW 5s", "select * from a join b window 5s"},
		{"SELECT * FROM s WHERE val > 10 AND key % 4 = 0", "select * from s where ((val > 10) and ((key % 4) = 0))"},
		{"SELECT * FROM s WHERE NOT (val < 0 OR val > 1)", "select * from s where (not ((val < 0) or (val > 1)))"},
		{"SELECT max(key) FROM s WINDOW 500ms", "select max(key) from s window 500ms"},
		{"SELECT sum(val) FROM s WINDOW 100 ROWS", "select sum(val) from s window 100 rows"},
		{"SELECT sum(val) FROM s GROUP BY KEY WINDOW 8 ROWS", "select sum(val) from s group by key window 8 rows"},
		{"SELECT sum(val) FROM s WINDOW 0 ROWS", ""},   // empty rows window
		{"SELECT sum(val) FROM s WINDOW 100 COLS", ""}, // bad unit
		{"SELECT * FROM s WINDOW 100 ROWS", ""},        // rows window without aggregate
		{"SELECT * FROM s WHERE -val < 1", "select * from s where ((-val) < 1)"},
		{"SELECT nope FROM s", ""},
		{"SELECT * FROM", ""},
		{"SELECT avg(val) FROM s", ""},          // aggregate without window
		{"SELECT * FROM s WINDOW 5s", ""},       // window without aggregate
		{"SELECT * FROM s GROUP BY KEY", ""},    // group-by without aggregate
		{"SELECT * FROM s WHERE val + 1", ""},   // non-boolean WHERE
		{"SELECT * FROM s WHERE val AND 1", ""}, // AND over numbers
		{"SELECT * FROM a JOIN b", ""},          // join without window
		{"SELECT * FROM s trailing", ""},
		{"", ""},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("Parse(%q) succeeded as %q, want error", c.in, q)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseWindowOrder(t *testing.T) {
	// GROUP BY must precede WINDOW in this grammar; the reverse is a
	// trailing-token error.
	if _, err := Parse("SELECT count(*) FROM s WINDOW 1m GROUP BY KEY"); err == nil {
		t.Fatal("expected parse error for WINDOW before GROUP BY")
	}
}

func TestExprEval(t *testing.T) {
	q, err := Parse("SELECT * FROM s WHERE key % 3 = 1 AND val * 2 >= 10 OR ts < 5")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		e    stream.Element
		want bool
	}{
		{stream.Element{Key: 1, Val: 5, TS: 10}, true},   // 1%3=1 && 10>=10
		{stream.Element{Key: 1, Val: 4, TS: 10}, false},  // second conjunct fails
		{stream.Element{Key: 2, Val: 50, TS: 10}, false}, // first fails
		{stream.Element{Key: 2, Val: 0, TS: 4}, true},    // ts < 5 rescues
	}
	for _, c := range cases {
		if got := q.Where.Bool(c.e); got != c.want {
			t.Errorf("where(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestPlanAndRunSelection(t *testing.T) {
	eng := hmts.New()
	src := eng.Source("s", hmts.GenerateStamped(1000, 1e6, hmts.SeqKeys()))
	q, err := Parse("SELECT * FROM s WHERE key % 10 < 3")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Plan(eng, map[string]*hmts.Stream{"s": src}, q)
	if err != nil {
		t.Fatal(err)
	}
	sink := out.Collect("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeGTS})
	eng.Wait()
	sink.Wait()
	if got := sink.Len(); got != 300 {
		t.Fatalf("got %d results, want 300", got)
	}
}

func TestPlanAndRunAggregate(t *testing.T) {
	eng := hmts.New()
	src := eng.Source("s", hmts.GenerateStamped(400, 1000, func(i int) hmts.Element {
		return hmts.Element{Key: int64(i % 2), Val: float64(i)}
	}))
	q, err := Parse("SELECT count(*) FROM s GROUP BY KEY WINDOW 1h")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Plan(eng, map[string]*hmts.Stream{"s": src}, q)
	if err != nil {
		t.Fatal(err)
	}
	sink := out.Collect("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeDI})
	eng.Wait()
	sink.Wait()
	els := sink.Elements()
	if len(els) != 400 {
		t.Fatalf("continuous aggregate should emit 400, got %d", len(els))
	}
	final := map[int64]float64{}
	for _, e := range els {
		final[e.Key] = e.Val
	}
	if final[0] != 200 || final[1] != 200 {
		t.Fatalf("final group counts %v, want 200 each", final)
	}
}

func TestPlanAndRunJoin(t *testing.T) {
	eng := hmts.New()
	a := eng.Source("a", hmts.GenerateStamped(500, 1e6, hmts.UniformKeys(0, 20, 1)))
	b := eng.Source("b", hmts.GenerateStamped(500, 1e6, hmts.UniformKeys(0, 20, 2)))
	q, err := Parse("SELECT * FROM a JOIN b WINDOW 1h WHERE key < 10")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Plan(eng, map[string]*hmts.Stream{"a": a, "b": b}, q)
	if err != nil {
		t.Fatal(err)
	}
	sink := out.Collect("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeHMTS})
	eng.Wait()
	sink.Wait()
	if sink.Len() == 0 {
		t.Fatal("join query produced nothing")
	}
	for _, e := range sink.Elements() {
		if e.Key >= 10 {
			t.Fatalf("WHERE not applied after join: key %d", e.Key)
		}
	}
}

func TestPlanUnknownSource(t *testing.T) {
	eng := hmts.New()
	q, err := Parse("SELECT * FROM ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(eng, map[string]*hmts.Stream{}, q); err == nil ||
		!strings.Contains(err.Error(), "unknown source") {
		t.Fatalf("want unknown-source error, got %v", err)
	}
}

func TestDurationValidation(t *testing.T) {
	if _, err := Parse("SELECT avg(val) FROM s WINDOW 0s"); err == nil {
		t.Fatal("zero window should be rejected")
	}
	if _, err := Parse("SELECT avg(val) FROM s WINDOW bogus"); err == nil {
		t.Fatal("malformed duration should be rejected")
	}
	_ = time.Second
}

func TestHaving(t *testing.T) {
	// Parsing.
	q, err := Parse("SELECT count(*) FROM s GROUP BY KEY WINDOW 1h HAVING val >= 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "select count(*) from s group by key window 1h0m0s having (val >= 3)" {
		t.Fatalf("canonical form %q", got)
	}
	if _, err := Parse("SELECT * FROM s HAVING val > 1"); err == nil {
		t.Fatal("HAVING without aggregate should be rejected")
	}
	if _, err := Parse("SELECT count(*) FROM s WINDOW 1s HAVING val + 1"); err == nil {
		t.Fatal("non-boolean HAVING should be rejected")
	}

	// Execution: counts per key reach 3 only after the third occurrence.
	eng := hmts.New()
	src := eng.Source("s", hmts.GenerateStamped(12, 1000, func(i int) hmts.Element {
		return hmts.Element{Key: int64(i % 3)} // each key appears 4 times
	}))
	out, err := Plan(eng, map[string]*hmts.Stream{"s": src}, q)
	if err != nil {
		t.Fatal(err)
	}
	sink := out.Collect("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeGTS})
	eng.Wait()
	sink.Wait()
	// Emissions with count >= 3: occurrences 3 and 4 of each key -> 6.
	if sink.Len() != 6 {
		t.Fatalf("having passed %d, want 6: %v", sink.Len(), sink.Elements())
	}
	for _, e := range sink.Elements() {
		if e.Val < 3 {
			t.Fatalf("having leaked %v", e)
		}
	}
}
