// Package ql implements a small continuous-query language on top of the
// hmts builder, used by cmd/hmtsd and handy for tests and examples.
//
// Grammar (case-insensitive keywords):
//
//	query  := SELECT sel FROM src [JOIN src WINDOW dur]
//	          [WHERE expr] [GROUP BY KEY] [WINDOW dur]
//	sel    := '*' | field | agg '(' field | '*' ')'
//	agg    := COUNT | SUM | AVG | MIN | MAX
//	field  := KEY | VAL | TS
//	expr   := boolean expression over KEY, VAL, TS with
//	          = != < <= > >= + - * / % AND OR NOT ( ) numbers
//	dur    := Go duration literal, e.g. 60s, 500ms, 1m
//
// Examples:
//
//	SELECT * FROM sensors WHERE val > 10 AND key % 4 = 0
//	SELECT avg(val) FROM sensors WINDOW 60s GROUP BY KEY
//	SELECT * FROM orders JOIN payments WINDOW 5s WHERE val >= 100
//
// Operator names are derived from the expression text, so two
// statements with an identical clause prefix compile to
// identically-named operators — when registered through
// Engine.AddQuery (hmtsd's QUERY ADD / QUERY DROP verbs), the engine's
// common-prefix subsumption shares that prefix instead of duplicating
// it.
package ql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits the input into tokens. Identifiers are lower-cased so
// keywords are case-insensitive.
type lexer struct {
	in   string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.in[l.pos]
		switch {
		case unicode.IsLetter(rune(c)) || c == '_':
			for l.pos < len(l.in) && (isIdentChar(l.in[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(l.in[start:l.pos]), pos: start})
		case unicode.IsDigit(rune(c)) || c == '.':
			// Numbers may carry a duration suffix (60s, 1m30s, 500ms);
			// the parser decides whether a duration is legal here.
			for l.pos < len(l.in) && (isIdentChar(l.in[l.pos]) || l.in[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
		default:
			sym, n := l.symbol()
			if n == 0 {
				return nil, fmt.Errorf("ql: unexpected character %q at %d", c, l.pos)
			}
			l.pos += n
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
}

// symbol recognizes the operator at the cursor, longest match first.
func (l *lexer) symbol() (string, int) {
	rest := l.in[l.pos:]
	for _, s := range []string{"<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ";"} {
		if strings.HasPrefix(rest, s) {
			return s, len(s)
		}
	}
	return "", 0
}
