package ql

import (
	"strings"
	"testing"

	hmts "github.com/dsms/hmts"
)

const demoScript = `
-- two sources sharing a key domain
CREATE SOURCE a COUNT 2000 RATE 0 KEYS 0 99 SEED 1 STAMPED;
CREATE SOURCE b COUNT 2000 RATE 0 KEYS 0 99 SEED 2 STAMPED;

SELECT * FROM a WHERE key < 50;
SELECT count(*) FROM b GROUP BY KEY WINDOW 1h;
SET MODE gts chain;
`

func TestParseScript(t *testing.T) {
	s, err := ParseScript(demoScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sources) != 2 || len(s.Queries) != 2 {
		t.Fatalf("parsed %d sources, %d queries", len(s.Sources), len(s.Queries))
	}
	if s.Mode != hmts.ModeGTS || s.Strategy != "chain" {
		t.Fatalf("mode %v strategy %q", s.Mode, s.Strategy)
	}
	a := s.Sources[0]
	if a.Name != "a" || a.Count != 2000 || a.KeyHi != 99 || a.Seed != 1 || !a.Stamped {
		t.Fatalf("source a parsed as %+v", a)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []string{
		"",                                 // no SELECT
		"CREATE SOURCE s COUNT 10;",        // no SELECT
		"SELECT * FROM s; BOGUS STMT",      // unknown statement
		"CREATE SOURCE s; SELECT * FROM s", // missing COUNT
		"CREATE SOURCE s COUNT 10 KEYS 9 1; SELECT * FROM s",                  // hi < lo
		"CREATE SOURCE s COUNT 10; CREATE SOURCE s COUNT 10; SELECT * FROM s", // duplicate
		"SET MODE warp; SELECT * FROM s",                                      // unknown mode
		"SET MODE gts fifo extra; SELECT * FROM s",
		"SET MODE gts; SET MODE ots; SELECT * FROM s", // double SET MODE
		"CREATE SOURCE s COUNT ten; SELECT * FROM s",  // bad number
		"CREATE SOURCE s COUNT 10 WIBBLE 3; SELECT * FROM s",
	}
	for _, c := range cases {
		if _, err := ParseScript(c); err == nil {
			t.Errorf("ParseScript(%q) should fail", c)
		}
	}
}

func TestParseScriptNeverPanics(t *testing.T) {
	// Garbage inputs must produce errors, not panics.
	inputs := []string{
		";;;;", "select", "create source", "set mode",
		"SELECT * FROM s WHERE ((((", "CREATE SOURCE \x00 COUNT 1",
		strings.Repeat("a ", 10000), "SELECT * FROM s WINDOW -5s",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ParseScript(%q) panicked: %v", in, r)
				}
			}()
			_, _ = ParseScript(in)
		}()
	}
}

func TestScriptExecute(t *testing.T) {
	s, err := ParseScript(demoScript)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	// Query 0: keys uniform over [0,99], predicate key < 50 -> ~half.
	if r := results[0]; r.Count < 800 || r.Count > 1200 {
		t.Fatalf("q0 count %d, want ~1000", r.Count)
	}
	// Query 1: continuous aggregate emits once per input element.
	if r := results[1]; r.Count != 2000 {
		t.Fatalf("q1 count %d, want 2000", r.Count)
	}
	if len(results[0].Sample) != SampleCap {
		t.Fatalf("sample len %d", len(results[0].Sample))
	}
	if results[0].Query == "" || results[0].Elapsed <= 0 {
		t.Fatalf("result metadata missing: %+v", results[0])
	}
}

func TestScriptExecuteJoin(t *testing.T) {
	script := `
CREATE SOURCE l COUNT 500 RATE 0 KEYS 0 19 SEED 3 STAMPED;
CREATE SOURCE r COUNT 500 RATE 0 KEYS 0 19 SEED 4 STAMPED;
SELECT * FROM l JOIN r WINDOW 1h;
SET MODE ots;
`
	s, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Count == 0 {
		t.Fatal("join produced nothing")
	}
}

func TestScriptExecuteUnknownSource(t *testing.T) {
	s, err := ParseScript("SELECT * FROM ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(); err == nil {
		t.Fatal("want unknown-source error")
	}
}
