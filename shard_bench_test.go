package hmts_test

// BenchmarkShardScaling measures the tentpole of the shard rewrite: a hot
// filter → map → grouped-aggregate chain whose aggregate runs unsharded
// and at 1/2/4/8 replicas. Throughput should scale near-linearly with the
// replica count up to the machine's core count on multicore hardware (a
// single-core box serializes the replicas and measures only the rewrite's
// overhead). Tracked in BENCH_shard.json via make bench / make benchdiff.

import (
	"fmt"
	"testing"

	hmts "github.com/dsms/hmts"
)

func benchShardChain(b *testing.B, shards int) {
	// Precompute a zipf-keyed input pool once; pushes cycle through it.
	const pool = 1 << 14
	gen := hmts.ZipfKeys(1024, 1.1, 99)
	in := make([]hmts.Element, pool)
	for i := range in {
		in[i] = gen(i)
		in[i].TS = int64(i+1) * 1000
		in[i].Val = 1
	}

	eng := hmts.New()
	ext := hmts.External("ext", hmts.ExternalConfig{Buffer: 8192, Batch: 512})
	s := eng.Source("src", ext.Spec()).
		Where("odd", func(e hmts.Element) bool { return e.Key%2 == 1 }).
		Map("scale", func(e hmts.Element) hmts.Element { e.Val *= 2; return e }).
		AggregateRows("agg", hmts.Sum, 64, func(e hmts.Element) int64 { return e.Key })
	if shards > 0 {
		s = s.Shard(shards)
	}
	w := s.Discard("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeDI, QueueBound: 4096})

	b.ResetTimer()
	pushed := 0
	for pushed < b.N {
		k := len(in)
		if rem := b.N - pushed; rem < k {
			k = rem
		}
		pushed += ext.PushBatch(in[:k])
	}
	ext.Close()
	w.Wait()
	b.StopTimer()
	if err := eng.Err(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkShardScaling(b *testing.B) {
	b.Run("unsharded", func(b *testing.B) { benchShardChain(b, 0) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchShardChain(b, n) })
	}
}

// BenchmarkLiveReshard measures the full stop-the-world splice: drain,
// state export, re-hash replay and re-deployment of a loaded region.
func BenchmarkLiveReshard(b *testing.B) {
	gen := hmts.ZipfKeys(1024, 1.1, 99)
	eng := hmts.New()
	ext := hmts.External("ext", hmts.ExternalConfig{Buffer: 8192})
	w := eng.Source("src", ext.Spec()).
		AggregateRows("agg", hmts.Sum, 64, func(e hmts.Element) int64 { return e.Key }).
		Shard(2).
		Discard("out")
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeDI, QueueBound: 4096})
	// Load the windows with live state so every resize re-hashes it.
	for i := 0; i < 50_000; i++ {
		e := gen(i)
		e.TS = int64(i+1) * 1000
		ext.Push(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reshard("agg", 2+i%3); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ext.Close()
	w.Wait()
	if err := eng.Err(); err != nil {
		b.Fatal(err)
	}
}
