package hmts

import (
	"fmt"
	"sync"
	"time"

	"github.com/dsms/hmts/internal/graph"
	"github.com/dsms/hmts/internal/op"
	"github.com/dsms/hmts/internal/placement"
	"github.com/dsms/hmts/internal/sched"
	"github.com/dsms/hmts/internal/stream"
)

// Element is the unit of data flowing through queries. See stream.Element
// for field semantics: TS is the event timestamp in nanoseconds, Key the
// integer attribute joins and predicates use, Val the numeric payload, Aux
// an opaque application payload.
type Element = stream.Element

// Time is an event timestamp in nanoseconds.
type Time = stream.Time

// Mode selects the threading architecture for a run.
type Mode int

// The scheduling modes of the paper (§4). GTS and OTS are the two
// classical extremes; DI fuses all operators behind one queue per source;
// PureDI runs operators inside the source threads; HMTS partitions the
// graph with the stall-avoiding heuristic and arbitrates the partition
// threads with the level-3 thread scheduler.
const (
	ModeGTS Mode = iota
	ModeOTS
	ModeDI
	ModePureDI
	ModeHMTS
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGTS:
		return "gts"
	case ModeOTS:
		return "ots"
	case ModeDI:
		return "di"
	case ModePureDI:
		return "pure-di"
	case ModeHMTS:
		return "hmts"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// RunConfig tunes a run. The zero value is a valid GTS/FIFO configuration.
type RunConfig struct {
	// Mode selects the threading architecture.
	Mode Mode
	// Strategy names the level-2 scheduling strategy: "fifo" (default),
	// "chain", "roundrobin" or "maxqueue".
	Strategy string
	// Batch bounds how many elements an executor drains from one queue
	// per strategy decision (default 64).
	Batch int
	// Quantum is the executor time slice before re-arbitration (default
	// 2ms).
	Quantum time.Duration
	// MaxThreads bounds how many partition executors run concurrently in
	// ModeHMTS (default GOMAXPROCS). Ignored in other modes, which follow
	// the paper in not using the level-3 scheduler.
	MaxThreads int
	// QueueBound bounds decoupling queues for backpressure (0 =
	// unbounded). Safe under every mode, thread budget and live
	// reconfiguration: producers that must block cooperate with the
	// scheduler (yielding run permits and structural locks) instead of
	// deadlocking. The bound is strict for cross-thread producers; a
	// producer that is its own consumer overshoots it rather than
	// self-deadlock, as does teardown mid-push.
	QueueBound int
}

// Engine owns a query graph under construction and, after Run, its live
// deployment.
type Engine struct {
	g       *graph.Graph
	d       *sched.Deployment
	cfg     RunConfig
	running bool
	// mu serializes structural mutations of a live graph (Reshard,
	// AddQuery, DropQuery) against snapshot readers (Metrics), which walk
	// the node table.
	mu sync.RWMutex

	// Multi-query registration state (see query.go). queries maps a
	// registered standing query's name to its record, refs counts how many
	// registered queries reference each operator node, and curQuery is
	// non-nil only while an AddQuery build closure runs — it is what makes
	// the builder's place() share operators.
	queries  map[string]*queryReg
	refs     map[int]int
	curQuery *queryReg
	nextQSeq int
}

// New returns an empty engine.
func New() *Engine { return &Engine{g: graph.New()} }

// Graph exposes the underlying query graph for inspection (DOT export,
// planning experiments). Mutating it after Run is invalid.
func (e *Engine) Graph() *graph.Graph { return e.g }

// plan derives the deployment plan for a mode.
func (e *Engine) plan(mode Mode) (sched.Plan, sched.Options) {
	opts := sched.Options{
		Strategy:   e.cfg.Strategy,
		Batch:      e.cfg.Batch,
		Quantum:    e.cfg.Quantum,
		QueueBound: e.cfg.QueueBound,
	}
	var p sched.Plan
	switch mode {
	case ModeGTS:
		p = sched.GTS(e.g)
	case ModeOTS:
		p = sched.OTS(e.g)
	case ModeDI:
		p = sched.DI(e.g)
	case ModePureDI:
		p = sched.PureDI(e.g)
	case ModeHMTS:
		if err := e.g.DeriveRates(); err != nil {
			panic("hmts: " + err.Error())
		}
		p = sched.HMTS(e.g)
		opts.TS = &sched.TSConfig{MaxConcurrent: e.cfg.MaxThreads}
	default:
		panic(fmt.Sprintf("hmts: unknown mode %v", mode))
	}
	return p, opts
}

// Run validates the graph, deploys it under the configured mode and starts
// processing. It returns an error if the graph is structurally invalid.
func (e *Engine) Run(cfg RunConfig) error {
	if e.running {
		return fmt.Errorf("hmts: engine already running")
	}
	e.cfg = cfg
	plan, opts := e.plan(cfg.Mode)
	d, err := sched.Build(e.g, plan, opts)
	if err != nil {
		return err
	}
	e.d = d
	e.running = true
	d.Start()
	return nil
}

// MustRun is Run, panicking on error; convenient in examples and tests.
func (e *Engine) MustRun(cfg RunConfig) {
	if err := e.Run(cfg); err != nil {
		panic(err)
	}
}

// Wait blocks until all sources are exhausted and all queues drained.
func (e *Engine) Wait() {
	if e.d != nil {
		e.d.Wait()
	}
}

// Stop aborts processing; queued elements may be dropped.
func (e *Engine) Stop() {
	if e.d != nil {
		e.d.Stop()
	}
}

// Err returns the first operator failure observed by the deployment, or
// nil. A panicking operator fail-stops the engine: sources stop, executors
// halt, and the panic is captured here instead of crashing the process.
func (e *Engine) Err() error {
	if e.d == nil {
		return nil
	}
	return e.d.Err()
}

// SwitchMode changes the threading architecture of a running engine. A
// switch between GTS and OTS only re-groups the executors over the
// existing queues (the paper's instant switch); any other transition also
// re-places queues, draining those that are removed.
func (e *Engine) SwitchMode(mode Mode, strategy string) error {
	if e.d == nil {
		return fmt.Errorf("hmts: engine not running")
	}
	newPlan, _ := e.plan(mode)
	cur := e.cfg.Mode
	e.cfg.Mode = mode
	groupSwitch := (cur == ModeGTS || cur == ModeOTS) && (mode == ModeGTS || mode == ModeOTS)
	if groupSwitch {
		return e.d.SwitchGroups(sched.Plan{SingleGroup: mode == ModeGTS}, strategy)
	}
	return e.d.Reconfigure(newPlan, strategy)
}

// Rebalance re-partitions the running graph using the operators' measured
// costs, selectivities and rates — the adaptive runtime queue placement
// the paper lists as future work. Queues are inserted or removed (after
// draining) as the stall-avoiding heuristic dictates.
func (e *Engine) Rebalance() error {
	if e.d == nil {
		return fmt.Errorf("hmts: engine not running")
	}
	e.g.AdoptMeasuredStats()
	cut := placement.FirstFitDecreasing(e.g)
	return e.d.Reconfigure(sched.Plan{Cut: cut}, "")
}

// Reshard changes the replica count of the shard region built from the
// operator of the given name (see Stream.Shard). Before Run it is pure
// graph surgery — the replicas have no state yet. On a running engine the
// region is quiesced, its window state re-hashed across the new replicas,
// and processing resumes with no seam in the output order: downstream
// consumers see exactly the elements they would have seen without the
// resize. Resizing is refused once the region's input streams have started
// closing.
func (e *Engine) Reshard(name string, n int) error {
	gr := e.g.ShardGroup(name)
	if gr == nil {
		return fmt.Errorf("hmts: no shard region %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.d == nil {
		_, err := e.g.ResizeShard(gr, n)
		return err
	}
	return e.d.Reshard(gr, n)
}

// Shed engages (true) or releases (false) emergency load shedding: every
// external source (see External) temporarily switches its overload policy
// to DropNewest, bounding ingress memory and keeping the engine responsive
// while demand exceeds capacity; releasing restores each source's
// configured policy. Unlike SwitchMode/Rebalance it never pauses the
// world — it only flips per-source policy flags — so the adaptive
// controller can engage it cheaply (adapt.ShedOnOverload). Sources other
// than external ones are unaffected. Safe before and during a run.
func (e *Engine) Shed(on bool) {
	for _, n := range e.g.Sources() {
		if sh, ok := n.Src.(interface{ Shed(bool) }); ok {
			sh.Shed(on)
		}
	}
}

// Deployment exposes the live deployment for advanced inspection (queues,
// executors, VO structure); nil before Run.
func (e *Engine) Deployment() *sched.Deployment { return e.d }

// node wraps graph node creation with builder handles.
func (e *Engine) addOp(name string, o op.Operator, costNS, sel float64) *graph.Node {
	return e.g.AddOp(name, o, costNS, sel)
}
