package hmts

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/dsms/hmts/internal/graph"
	"github.com/dsms/hmts/internal/op"
	"github.com/dsms/hmts/internal/sched"
)

// This file implements runtime multi-query registration with
// common-prefix subsumption: Engine.AddQuery merges a new standing
// query's plan into the (possibly live) graph at the longest shared
// prefix — operators whose canonical fingerprint (kind, parameters,
// upstream fingerprints; see graph/subsume.go) matches an operator of an
// already-registered query are reused and refcounted instead of
// duplicated, and the plan fans out at the divergence point. DropQuery
// decrements the refcounts and prunes the suffix the dropped query owned
// exclusively, draining in-flight elements into the dying sink first.
//
// Sharing is opt-in per registration: only operators built inside an
// AddQuery closure participate, and they only unify with operators of
// other registered queries. Plain builder calls outside AddQuery never
// share (several tests and examples legitimately reuse operator names
// for distinct predicates). Within AddQuery, the operator name is part
// of the canonical identity — equal names passed to the same builder
// method with equal structural parameters must mean equal behavior, the
// contract ql.Plan upholds by deriving names from expression strings.

// queryReg is one registered standing query.
type queryReg struct {
	name string
	seq  int // registration order, for stable metrics listing
	tap  *queryTap
	// used marks the operator node IDs this query references (shared or
	// private); nodes lists them in plan order.
	used  map[int]bool
	nodes []int
	// sinks are the query's private sink node IDs (the tap's node, plus
	// any sinks the build closure attached). Sinks never share.
	sinks []int
	// regions are the shard regions this query owns. A SHARD region is
	// always private to its query: prefix sharing ends at the region
	// boundary, so Reshard and the autoscaler keep their one-owner
	// semantics.
	regions []*graph.ShardGroup
}

func (q *queryReg) use(e *Engine, n *graph.Node) {
	if q.used[n.ID] {
		return
	}
	q.used[n.ID] = true
	q.nodes = append(q.nodes, n.ID)
	e.refs[n.ID]++
}

func (q *queryReg) adoptRegion(e *Engine, gr *graph.ShardGroup, replaced int) {
	if q.used[replaced] {
		delete(q.used, replaced)
		delete(e.refs, replaced)
		for i, id := range q.nodes {
			if id == replaced {
				q.nodes = append(q.nodes[:i], q.nodes[i+1:]...)
				break
			}
		}
	}
	q.regions = append(q.regions, gr)
}

// regionNodeIDs expands the query's regions to their current member
// nodes. Evaluated at drop time, not registration time: a live Reshard
// replaces replica nodes.
func (q *queryReg) regionNodeIDs() []int {
	var ids []int
	for _, gr := range q.regions {
		ids = append(ids, gr.Split.ID)
		for _, rn := range gr.Replicas {
			ids = append(ids, rn.ID)
		}
		ids = append(ids, gr.Merge.ID)
	}
	return ids
}

// queryTap wraps a query's user sink: it meters delivered results for the
// per-query metrics section and dedups end-of-stream, so DropQuery can
// force a final Done on a sink whose stream was severed mid-flight.
type queryTap struct {
	inner   Sink
	out     atomic.Uint64
	firstNS atomic.Int64
	lastNS  atomic.Int64
	done    atomic.Bool
}

func (t *queryTap) meter(n int) {
	now := time.Now().UnixNano()
	t.firstNS.CompareAndSwap(0, now)
	t.lastNS.Store(now)
	t.out.Add(uint64(n))
}

// Process implements Sink.
func (t *queryTap) Process(port int, e Element) {
	t.meter(1)
	t.inner.Process(port, e)
}

// ProcessBatch implements op.BatchSink so batched delivery stays batched
// through the tap when the user sink supports it.
func (t *queryTap) ProcessBatch(port int, es []Element) {
	t.meter(len(es))
	if bs, ok := t.inner.(op.BatchSink); ok {
		bs.ProcessBatch(port, es)
		return
	}
	for _, e := range es {
		t.inner.Process(port, e)
	}
}

// Done implements Sink.
func (t *queryTap) Done(port int) {
	if !t.done.Swap(true) {
		t.inner.Done(port)
	}
}

func (t *queryTap) forceDone() { t.Done(0) }

// place routes operator creation through the multi-query sharing layer.
// Outside a registration it just builds. Inside one, it first looks for
// an operator of an already-registered query with the same canonical
// fingerprint and exact upstream wiring; on a hit the existing node is
// refcounted and reused, otherwise build runs and the new node is
// fingerprinted and owned. build must create the node and connect
// exactly the edges described by ins.
func (e *Engine) place(params string, ins []graph.FPIn, build func() *graph.Node) *graph.Node {
	q := e.curQuery
	if q == nil {
		return build()
	}
	fp := e.g.FPOf(params, ins)
	if n := e.g.FindFP(fp, params, ins); n != nil && e.refs[n.ID] > 0 {
		q.use(e, n)
		return n
	}
	n := build()
	e.g.SetFP(n, params, fp)
	q.use(e, n)
	return n
}

// placeSink records sink nodes created during a registration so DropQuery
// can prune them; sinks are always private.
func (e *Engine) placeSink(n *graph.Node) *graph.Node {
	if q := e.curQuery; q != nil {
		q.sinks = append(q.sinks, n.ID)
	}
	return n
}

// AddQuery registers a standing query under a unique name: build
// constructs the query's plan with the usual builder methods (or
// ql.Plan) and returns its result stream, and sink receives the query's
// results. Operators identical to those of already-registered queries —
// same builder method, same name and parameters, same upstream chain —
// are shared rather than duplicated, so the Nth similar query costs only
// its divergent operators.
//
// On a running engine the new plan is spliced in live under the same
// discipline as Reconfigure: executors pause, the suffix is wired (with
// bounded queues where the current mode dictates), and processing
// resumes — no restart, and under Block-policy bounded queues no
// elements are dropped. Live registrations may only read from sources
// that already exist. A query whose upstream has already reached
// end-of-stream completes immediately.
func (e *Engine) AddQuery(name string, sink Sink, build func() (*Stream, error)) error {
	if name == "" {
		return fmt.Errorf("hmts: AddQuery needs a name")
	}
	if sink == nil || build == nil {
		return fmt.Errorf("hmts: AddQuery %q needs a sink and a build function", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.queries == nil {
		e.queries = make(map[string]*queryReg)
		e.refs = make(map[int]int)
	}
	if _, dup := e.queries[name]; dup {
		return fmt.Errorf("hmts: query %q already registered", name)
	}
	reg := &queryReg{name: name, seq: e.nextQSeq, tap: &queryTap{inner: sink}, used: make(map[int]bool)}

	doBuild := func() error {
		e.curQuery = reg
		defer func() { e.curQuery = nil }()
		st, err := build()
		if err != nil {
			return err
		}
		if st == nil {
			return fmt.Errorf("hmts: query %q built a nil stream", name)
		}
		if st.eng != e {
			return fmt.Errorf("hmts: query %q built on a different engine", name)
		}
		sn := e.g.AddSink(name, reg.tap)
		e.g.Connect(st.node, sn, 0)
		reg.sinks = append(reg.sinks, sn.ID)
		return nil
	}

	span := e.g.IDSpan()
	// A registered query must read from sources that already exist on the
	// engine — it cannot bring its own (two registrations could then never
	// share a prefix, and a live splice has no way to start a new source
	// goroutine). checkSources rejects a build that created one; the
	// rollback sweep removes such nodes along with the created operators.
	// Only the ID range the build appended is scanned — a registration's
	// cost must stay proportional to its divergent suffix, not to the
	// number of queries already standing.
	checkSources := func() error {
		for id, hi := span, e.g.IDSpan(); id < hi; id++ {
			n := e.g.NodeOrNil(id)
			if n != nil && n.Kind == graph.KindSource {
				err := fmt.Errorf("hmts: query %q creates source %q inside AddQuery; register sources on the engine first and reference their streams", name, n.Name)
				e.rollbackQuery(reg, span)
				return err
			}
		}
		return nil
	}

	if e.d == nil {
		if err := doBuild(); err != nil {
			e.rollbackQuery(reg, span)
			return err
		}
		if err := checkSources(); err != nil {
			return err
		}
	} else {
		err := e.d.Splice(func(sp *sched.Splicer) error {
			if err := doBuild(); err != nil {
				e.rollbackQuery(reg, span)
				return err
			}
			if err := checkSources(); err != nil {
				return err
			}
			// Every edge the build added touches a node in the appended ID
			// range: in-edges of new nodes cover old→new and new→new, and
			// the out-edge sweep catches a new producer wired into an old
			// target. Walking that range instead of the whole edge set
			// keeps a live registration O(divergent suffix).
			mc := e.g.MustCut()
			for id, hi := span, e.g.IDSpan(); id < hi; id++ {
				if e.g.NodeOrNil(id) == nil {
					continue
				}
				for _, ed := range e.g.InEdges(id) {
					sp.AddEdge(ed, e.cutNewEdge(sp, ed, span, mc))
				}
				for _, ed := range e.g.OutEdges(id) {
					if ed.To < span {
						sp.AddEdge(ed, e.cutNewEdge(sp, ed, span, mc))
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	e.queries[name] = reg
	e.nextQSeq++
	return nil
}

// cutNewEdge decides whether a freshly spliced-in edge gets a decoupling
// queue: shard-region internals always do; a new fan-out edge from a
// source mirrors the placement of the source's existing edges; divergent
// operator→operator edges follow the mode's discipline — a queue per edge
// under GTS/OTS, fused into the upstream VO otherwise (a later Rebalance
// re-places them from measured stats).
func (e *Engine) cutNewEdge(sp *sched.Splicer, ed graph.Edge, span int, mustCut map[graph.EdgeKey]bool) bool {
	to := e.g.Node(ed.To)
	if to.Kind == graph.KindSink {
		return false
	}
	if mustCut[ed.Key()] {
		return true
	}
	from := e.g.Node(ed.From)
	if from.Kind == graph.KindSource {
		sibling := false
		for _, o := range e.g.OutEdges(from.ID) {
			if o == ed || o.To >= span {
				continue
			}
			sibling = true
			if sp.HasCut(o.Key()) {
				return true
			}
		}
		if sibling {
			return false
		}
		return e.cfg.Mode != ModePureDI
	}
	return e.cfg.Mode == ModeGTS || e.cfg.Mode == ModeOTS
}

// rollbackQuery undoes a failed registration: shared refcounts are
// released, the nodes the aborted build created are pruned, and any
// source nodes the build added (IDs at or past span) are swept once
// their consumers are gone. Safe both before deployment and inside a
// live splice — a failed build has mutated only the graph, never the
// deployment's queues or subscriptions.
func (e *Engine) rollbackQuery(reg *queryReg, span int) {
	var created []int
	for _, id := range reg.nodes {
		e.refs[id]--
		if e.refs[id] <= 0 {
			delete(e.refs, id)
			created = append(created, id)
		}
	}
	e.pruneGraph(append(created, append(reg.regionNodeIDs(), reg.sinks...)...), reg.regions)
	for _, n := range e.g.Nodes() {
		if n.ID >= span && n.Kind == graph.KindSource {
			e.g.RemoveNode(n)
		}
	}
}

// pruneGraph removes a set of exclusively-owned nodes from the graph:
// every in-edge of a pruned node is disconnected (an out-edge of a
// pruned node always targets another pruned node — shared operators
// never hang downstream of private ones), then the nodes and any owned
// shard regions are dropped.
func (e *Engine) pruneGraph(ids []int, regions []*graph.ShardGroup) {
	for _, id := range ids {
		for _, ed := range append([]graph.Edge(nil), e.g.InEdges(id)...) {
			e.g.Disconnect(ed)
		}
	}
	for _, id := range ids {
		e.g.RemoveNode(e.g.Node(id))
	}
	for _, gr := range regions {
		if err := e.g.DropShardGroup(gr); err != nil {
			panic("hmts: " + err.Error())
		}
	}
}

// DropQuery removes a standing query registered with AddQuery. Operators
// shared with other queries survive (their refcount drops); the suffix
// only this query used — divergence point to sink, including any shard
// region — is pruned. On a running engine the removal is a live splice:
// elements already queued for the dying suffix are drained into its sink
// before the queues are retired, the suffix's subscriptions are severed
// at the divergence point, and the sink receives a final Done.
func (e *Engine) DropQuery(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	reg := e.queries[name]
	if reg == nil {
		return fmt.Errorf("hmts: no query %q", name)
	}

	// The pruned set: nodes whose only remaining user is this query, plus
	// the query's sinks and shard-region members (always private).
	prunedSet := make(map[int]bool)
	for _, id := range reg.nodes {
		if e.refs[id] == 1 {
			prunedSet[id] = true
		}
	}
	for _, id := range reg.regionNodeIDs() {
		prunedSet[id] = true
	}
	for _, id := range reg.sinks {
		prunedSet[id] = true
	}
	pruned := make([]int, 0, len(prunedSet))
	for id := range prunedSet {
		pruned = append(pruned, id)
	}
	sort.Ints(pruned)

	if e.d == nil {
		e.pruneGraph(pruned, reg.regions)
	} else {
		err := e.d.Splice(func(sp *sched.Splicer) error {
			order, err := e.g.TopoOrder()
			if err != nil {
				return err
			}
			// Retire the suffix upstream-first: draining a node's entry
			// queues pushes its backlog through the still-wired suffix
			// into the dying sink, so accepted elements are processed,
			// not dropped.
			for _, n := range order {
				if !prunedSet[n.ID] {
					continue
				}
				for _, ed := range append([]graph.Edge(nil), e.g.InEdges(n.ID)...) {
					sp.RemoveEdge(ed, prunedSet[ed.From])
				}
				sp.FlushNode(n)
			}
			for _, id := range pruned {
				e.g.RemoveNode(e.g.Node(id))
			}
			for _, gr := range reg.regions {
				if err := e.g.DropShardGroup(gr); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for _, id := range reg.nodes {
		e.refs[id]--
		if e.refs[id] <= 0 {
			delete(e.refs, id)
		}
	}
	delete(e.queries, name)
	reg.tap.forceDone()
	return nil
}

// Queries returns the names of the registered standing queries in
// registration order.
func (e *Engine) Queries() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.queryNamesLocked()
}

func (e *Engine) queryNamesLocked() []string {
	names := make([]string, 0, len(e.queries))
	for name := range e.queries {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return e.queries[names[i]].seq < e.queries[names[j]].seq
	})
	return names
}
