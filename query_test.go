package hmts_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	hmts "github.com/dsms/hmts"
	"github.com/dsms/hmts/internal/testutil"
)

// memSink collects a query's results and tracks end-of-stream, failing
// the ordering contract checks if an element arrives after Done.
type memSink struct {
	mu        sync.Mutex
	els       []hmts.Element
	done      int
	afterDone int
	doneCh    chan struct{}
}

func newMemSink() *memSink { return &memSink{doneCh: make(chan struct{})} }

func (m *memSink) Process(_ int, e hmts.Element) {
	m.mu.Lock()
	if m.done > 0 {
		m.afterDone++
	}
	m.els = append(m.els, e)
	m.mu.Unlock()
}

func (m *memSink) Done(int) {
	m.mu.Lock()
	m.done++
	if m.done == 1 {
		close(m.doneCh)
	}
	m.mu.Unlock()
}

func (m *memSink) wait(t *testing.T) {
	t.Helper()
	select {
	case <-m.doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("sink never saw Done")
	}
}

func (m *memSink) snapshot() (els []hmts.Element, done, afterDone int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]hmts.Element(nil), m.els...), m.done, m.afterDone
}

// opSpec is one randomly drawn operator, applied identically to the
// shared multi-query engine and to an independent single-query engine.
type opSpec struct {
	kind int
	a    float64
	i    int
	name string
}

func randOp(rng *rand.Rand, pos string) opSpec {
	sp := opSpec{kind: rng.Intn(6), a: float64(rng.Intn(90)+5) / 100, i: rng.Intn(5)}
	sp.name = fmt.Sprintf("%s|k%d|a%g|i%d", pos, sp.kind, sp.a, sp.i)
	return sp
}

func (sp opSpec) apply(s *hmts.Stream) *hmts.Stream {
	switch sp.kind {
	case 0:
		thr := sp.a
		return s.Where(sp.name, func(e hmts.Element) bool { return e.Val > thr })
	case 1:
		add := sp.a
		return s.Map(sp.name, func(e hmts.Element) hmts.Element { e.Val += add; return e })
	case 2:
		return s.Distinct(sp.name, time.Duration(sp.i+1)*time.Millisecond)
	case 3:
		return s.AggregateRows(sp.name, hmts.Sum, sp.i+2, func(e hmts.Element) int64 { return e.Key })
	case 4:
		return s.Aggregate(sp.name, hmts.Count, time.Duration(sp.i+1)*time.Millisecond, func(e hmts.Element) int64 { return e.Key })
	case 5:
		return s.TopK(sp.name, sp.i+2, time.Duration(sp.i+1)*time.Millisecond)
	}
	panic("unreachable")
}

func applyAll(s *hmts.Stream, specs []opSpec) *hmts.Stream {
	for _, sp := range specs {
		s = sp.apply(s)
	}
	return s
}

func trialData(rng *rand.Rand, n int) []hmts.Element {
	els := make([]hmts.Element, n)
	for i := range els {
		els[i] = hmts.Element{TS: hmts.Time(i) * 1000, Key: rng.Int63n(32), Val: rng.Float64()}
	}
	return els
}

// TestSharedQueriesMatchIndependent is the equivalence test of the
// multi-query subsumption layer: N queries registered on one shared
// engine (prefix-merged, refcounted, fanned out at divergence) must
// produce byte-identical outputs to N independent single-query engines,
// over randomized plans and seeds, with scalar and batched sources.
func TestSharedQueriesMatchIndependent(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("trial=%d/batched=%v", trial, batched), func(t *testing.T) {
				runEquivalenceTrial(t, int64(1000+trial), batched)
			})
		}
	}
}

func runEquivalenceTrial(t *testing.T, seed int64, batched bool) {
	rng := rand.New(rand.NewSource(seed))
	data := trialData(rng, 3000)
	prefix := make([]opSpec, rng.Intn(3))
	for i := range prefix {
		prefix[i] = randOp(rng, fmt.Sprintf("pre%d", i))
	}
	numQ := 3 + rng.Intn(3)
	suffixes := make([][]opSpec, numQ)
	for q := range suffixes {
		suffixes[q] = make([]opSpec, 1+rng.Intn(2))
		for i := range suffixes[q] {
			suffixes[q][i] = randOp(rng, fmt.Sprintf("q%d.%d", q, i))
		}
	}
	spec := func() hmts.SourceSpec {
		s := hmts.Replay(data)
		if batched {
			s = s.Batched(64)
		}
		return s
	}
	cfg := hmts.RunConfig{Mode: hmts.ModeGTS, QueueBound: 256}

	// Shared engine: all queries registered through AddQuery.
	shared := hmts.New()
	src := shared.Source("src", spec())
	sinks := make([]*memSink, numQ)
	for q := 0; q < numQ; q++ {
		sinks[q] = newMemSink()
		q := q
		err := shared.AddQuery(fmt.Sprintf("q%d", q), sinks[q], func() (*hmts.Stream, error) {
			return applyAll(applyAll(src, prefix), suffixes[q]), nil
		})
		if err != nil {
			t.Fatalf("AddQuery q%d: %v", q, err)
		}
	}
	shared.MustRun(cfg)
	shared.Wait()
	if err := shared.Err(); err != nil {
		t.Fatalf("shared engine: %v", err)
	}

	// Independent engines: one plain single-query plan each.
	for q := 0; q < numQ; q++ {
		solo := hmts.New()
		ref := newMemSink()
		applyAll(applyAll(solo.Source("src", spec()), prefix), suffixes[q]).Into("out", ref)
		solo.MustRun(cfg)
		solo.Wait()
		if err := solo.Err(); err != nil {
			t.Fatalf("solo engine q%d: %v", q, err)
		}
		want, _, _ := ref.snapshot()
		got, done, after := sinks[q].snapshot()
		if done != 1 || after != 0 {
			t.Fatalf("q%d: done=%d afterDone=%d", q, done, after)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d (seed %d, batched %v): %d results, want %d", q, seed, batched, len(got), len(want))
		}
		for i := range got {
			if got[i].TS != want[i].TS || got[i].Key != want[i].Key || got[i].Val != want[i].Val {
				t.Fatalf("q%d result %d: got %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestAddQueryMarginalCost asserts the headline registration property via
// the operator-count metrics: the Nth similar query allocates only its
// divergent operators — the shared prefix is reused, not rebuilt.
func TestAddQueryMarginalCost(t *testing.T) {
	eng := hmts.New()
	src := eng.Source("src", hmts.Replay(trialData(rand.New(rand.NewSource(7)), 100)))
	build := func(i int) func() (*hmts.Stream, error) {
		return func() (*hmts.Stream, error) {
			thr := float64(i) / 100
			s := src.
				Where("hot", func(e hmts.Element) bool { return e.Val > 0.5 }).
				Map("scale", func(e hmts.Element) hmts.Element { e.Val *= 2; return e }).
				Aggregate("cnt", hmts.Count, time.Millisecond, func(e hmts.Element) int64 { return e.Key })
			return s.Where(fmt.Sprintf("thr%d", i), func(e hmts.Element) bool { return e.Val > thr }), nil
		}
	}
	const numQ = 10
	base := len(eng.Graph().Ops())
	for i := 0; i < numQ; i++ {
		before := len(eng.Graph().Ops())
		if err := eng.AddQuery(fmt.Sprintf("q%d", i), newMemSink(), build(i)); err != nil {
			t.Fatal(err)
		}
		added := len(eng.Graph().Ops()) - before
		want := 1 // just the divergent threshold filter
		if i == 0 {
			want = 4 // first query pays for the whole chain
		}
		if added != want {
			t.Fatalf("query %d added %d operators, want %d", i, added, want)
		}
	}
	if total := len(eng.Graph().Ops()) - base; total != 3+numQ {
		t.Fatalf("graph holds %d query operators, want %d", total, 3+numQ)
	}
	m := eng.Metrics()
	if len(m.Queries) != numQ {
		t.Fatalf("metrics list %d queries, want %d", len(m.Queries), numQ)
	}
	for i, qm := range m.Queries {
		if qm.Name != fmt.Sprintf("q%d", i) {
			t.Fatalf("query %d listed as %q: registration order lost", i, qm.Name)
		}
		if qm.Shared != 3 || qm.Private != 1 || qm.Ops != 4 {
			t.Fatalf("%s: shared=%d private=%d ops=%d, want 3/1/4", qm.Name, qm.Shared, qm.Private, qm.Ops)
		}
	}
}

// TestDropQueryPrunesExclusiveSuffix checks the refcount/prune protocol
// before Run: dropping a query removes exactly the operators only it
// used, and dropping the last query sharing a prefix removes the prefix.
func TestDropQueryPrunesExclusiveSuffix(t *testing.T) {
	eng := hmts.New()
	src := eng.Source("src", hmts.Replay(trialData(rand.New(rand.NewSource(8)), 100)))
	reg := func(name string, thr float64) {
		err := eng.AddQuery(name, newMemSink(), func() (*hmts.Stream, error) {
			s := src.Where("hot", func(e hmts.Element) bool { return e.Val > 0.5 })
			return s.Where(fmt.Sprintf("thr%g", thr), func(e hmts.Element) bool { return e.Val > thr }), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("a", 0.6)
	reg("b", 0.7)
	if got := len(eng.Graph().Ops()); got != 3 {
		t.Fatalf("got %d ops, want 3 (shared prefix + 2 divergent)", got)
	}
	if err := eng.DropQuery("b"); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Graph().Ops()); got != 2 {
		t.Fatalf("after dropping b: %d ops, want 2", got)
	}
	if err := eng.DropQuery("a"); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Graph().Ops()); got != 0 {
		t.Fatalf("after dropping both: %d ops, want 0", got)
	}
	if err := eng.DropQuery("a"); err == nil {
		t.Fatal("double drop not rejected")
	}
	// The graph is clean enough to register and run a fresh query.
	reg("c", 0.4)
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeGTS})
	eng.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestAddQueryRejectsInvalid covers duplicate names, in-closure sources,
// and rollback: a failed registration must leave no trace in the graph.
func TestAddQueryRejectsInvalid(t *testing.T) {
	eng := hmts.New()
	src := eng.Source("src", hmts.Replay(trialData(rand.New(rand.NewSource(9)), 10)))
	ok := func() (*hmts.Stream, error) {
		return src.Where("w", func(e hmts.Element) bool { return true }), nil
	}
	if err := eng.AddQuery("q", newMemSink(), ok); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("q", newMemSink(), ok); err == nil {
		t.Fatal("duplicate name not rejected")
	}
	before := eng.Graph().Len()
	err := eng.AddQuery("bad-src", newMemSink(), func() (*hmts.Stream, error) {
		s := eng.Source("rogue", hmts.Replay(nil))
		return s.Where("x", func(e hmts.Element) bool { return true }), nil
	})
	if err == nil {
		t.Fatal("in-closure source not rejected")
	}
	if eng.Graph().Len() != before {
		t.Fatalf("failed registration leaked nodes: %d -> %d", before, eng.Graph().Len())
	}
	err = eng.AddQuery("bad-build", newMemSink(), func() (*hmts.Stream, error) {
		src.Where("dead-end", func(e hmts.Element) bool { return true })
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("build error not propagated")
	}
	if eng.Graph().Len() != before {
		t.Fatalf("aborted build leaked nodes: %d -> %d", before, eng.Graph().Len())
	}
}

// TestLiveAddDropUnderLoad drives a running engine from an external
// Block-policy source and adds/drops queries mid-stream under bounded
// queues: nothing may be dropped, a live-added query's output must be an
// exact suffix of the standing query's output (same shared operator, so
// same elements from the splice point on), and a live-dropped query gets
// exactly one Done with nothing delivered after it.
func TestLiveAddDropUnderLoad(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := hmts.New()
	ext := hmts.External("ingress", hmts.ExternalConfig{Policy: hmts.Block, Buffer: 128})
	src := eng.Source("ingress", ext.Spec())
	pass := func(e hmts.Element) bool { return true }

	standing := newMemSink()
	if err := eng.AddQuery("standing", standing, func() (*hmts.Stream, error) {
		return src.Where("all", pass), nil
	}); err != nil {
		t.Fatal(err)
	}
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeGTS, QueueBound: 64})

	const total = 30_000
	push := func(from, to int) {
		for i := from; i < to; i++ {
			// TS starts at 1000: a zero TS would be stamped with the
			// wall-clock arrival time, breaking monotonicity checks.
			if !ext.Push(hmts.Element{TS: hmts.Time(i+1) * 1000, Key: int64(i % 50), Val: float64(i)}) {
				t.Errorf("push %d rejected under Block policy", i)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); push(0, total/2) }()

	// Live add while the first half is in flight.
	late := newMemSink()
	if err := eng.AddQuery("late", late, func() (*hmts.Stream, error) {
		return src.Where("all", pass), nil
	}); err != nil {
		t.Fatalf("live AddQuery: %v", err)
	}
	// A transient query that is dropped mid-load.
	doomed := newMemSink()
	if err := eng.AddQuery("doomed", doomed, func() (*hmts.Stream, error) {
		return src.Where("all", pass).Map("x2", func(e hmts.Element) hmts.Element { e.Val *= 2; return e }), nil
	}); err != nil {
		t.Fatalf("live AddQuery: %v", err)
	}
	wg.Wait()
	wg.Add(1)
	go func() { defer wg.Done(); push(total/2, total) }()
	if err := eng.DropQuery("doomed"); err != nil {
		t.Fatalf("live DropQuery: %v", err)
	}
	doomed.wait(t)
	wg.Wait()
	ext.Close()
	eng.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	for _, in := range eng.Metrics().Ingest {
		if in.Dropped != 0 {
			t.Fatalf("ingress dropped %d elements under Block policy", in.Dropped)
		}
	}
	full, done, after := standing.snapshot()
	if done != 1 || after != 0 {
		t.Fatalf("standing: done=%d afterDone=%d", done, after)
	}
	if len(full) != total {
		t.Fatalf("standing query saw %d of %d elements", len(full), total)
	}
	suffix, done, after := late.snapshot()
	if done != 1 || after != 0 {
		t.Fatalf("late: done=%d afterDone=%d", done, after)
	}
	if len(suffix) == 0 {
		t.Fatal("live-added query produced nothing")
	}
	tail := full[len(full)-len(suffix):]
	for i := range suffix {
		if suffix[i] != tail[i] {
			t.Fatalf("late query output diverges at %d: got %+v, want %+v", i, suffix[i], tail[i])
		}
	}
	got, done, after := doomed.snapshot()
	if done != 1 || after != 0 {
		t.Fatalf("doomed: done=%d afterDone=%d (drop must deliver exactly one Done, then nothing)", done, after)
	}
	// The dropped query's output is an in-order run of doubled values.
	for i := 1; i < len(got); i++ {
		if got[i].TS <= got[i-1].TS {
			t.Fatalf("doomed output out of order at %d", i)
		}
	}
	t.Logf("standing=%d late=%d doomed=%d", len(full), len(suffix), len(got))
}

// TestLiveDropSourceSuffixUnderLoad churns queries whose private suffix
// hangs directly off the source — so each drop removes a source out-edge
// — while producers are parked on Block-full bounded queues. Regression:
// the source adapter used to index its rebuilt target list by position
// after waking from a park, panicking (index out of range) when the drop
// splice shrank the list, which fail-stopped the engine and abandoned the
// standing query's queued elements.
func TestLiveDropSourceSuffixUnderLoad(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for trial := 0; trial < 10; trial++ {
		eng := hmts.New()
		ext := hmts.External("ext", hmts.ExternalConfig{Policy: hmts.Block, Buffer: 64})
		src := eng.Source("ext", ext.Spec())
		standing := newMemSink()
		src.Where("keep", func(e hmts.Element) bool { return e.Key < 50 }).Into("keep-sink", standing)
		eng.MustRun(hmts.RunConfig{Mode: hmts.ModeGTS, QueueBound: 32})

		pushed := make(chan struct{})
		go func() {
			defer close(pushed)
			for i := 0; i < 4000; i++ {
				ext.Push(hmts.Element{TS: hmts.Time(i+1) * 1000, Key: int64(i % 100), Val: float64(i)})
			}
			ext.Close()
		}()
		for j := 0; j < 6; j++ {
			name := fmt.Sprintf("tmp%d", j)
			j := j
			if err := eng.AddQuery(name, newMemSink(), func() (*hmts.Stream, error) {
				return src.Where(fmt.Sprintf("priv%d", j), func(e hmts.Element) bool { return e.Key >= 50 }), nil
			}); err != nil {
				t.Fatalf("trial %d add: %v", trial, err)
			}
			time.Sleep(2 * time.Millisecond)
			if err := eng.DropQuery(name); err != nil {
				t.Fatalf("trial %d drop: %v (engine err: %v)", trial, err, eng.Err())
			}
		}
		<-pushed
		eng.Wait()
		if err := eng.Err(); err != nil {
			t.Fatalf("trial %d engine error: %v", trial, err)
		}
		els, done, afterDone := standing.snapshot()
		if len(els) != 2000 || done != 1 || afterDone != 0 {
			t.Fatalf("trial %d standing got %d els (want 2000), done=%d afterDone=%d", trial, len(els), done, afterDone)
		}
	}
}

// TestLiveAddSharesOperators verifies subsumption happens on a running
// engine too: a mid-stream registration with a common prefix reuses the
// live operators (metrics show them shared) and keeps the standing
// query's output complete.
func TestLiveAddSharesOperators(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := hmts.New()
	ext := hmts.External("ingress", hmts.ExternalConfig{Policy: hmts.Block, Buffer: 128})
	src := eng.Source("ingress", ext.Spec())
	q1 := newMemSink()
	if err := eng.AddQuery("q1", q1, func() (*hmts.Stream, error) {
		s := src.
			Where("hot", func(e hmts.Element) bool { return e.Val >= 0 }).
			Aggregate("cnt", hmts.Count, time.Millisecond, func(e hmts.Element) int64 { return e.Key })
		return s.Where("thr1", func(e hmts.Element) bool { return e.Val > 1 }), nil
	}); err != nil {
		t.Fatal(err)
	}
	eng.MustRun(hmts.RunConfig{Mode: hmts.ModeHMTS, QueueBound: 128})
	for i := 0; i < 5000; i++ {
		ext.Push(hmts.Element{TS: hmts.Time(i) * 1000, Key: int64(i % 10), Val: 1})
	}
	q2 := newMemSink()
	opsBefore := len(eng.Graph().Ops())
	if err := eng.AddQuery("q2", q2, func() (*hmts.Stream, error) {
		s := src.
			Where("hot", func(e hmts.Element) bool { return e.Val >= 0 }).
			Aggregate("cnt", hmts.Count, time.Millisecond, func(e hmts.Element) int64 { return e.Key })
		return s.Where("thr2", func(e hmts.Element) bool { return e.Val > 2 }), nil
	}); err != nil {
		t.Fatalf("live AddQuery: %v", err)
	}
	if added := len(eng.Graph().Ops()) - opsBefore; added != 1 {
		t.Fatalf("live registration added %d operators, want 1", added)
	}
	for i := 5000; i < 10000; i++ {
		ext.Push(hmts.Element{TS: hmts.Time(i) * 1000, Key: int64(i % 10), Val: 1})
	}
	ext.Close()
	eng.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if len(m.Queries) != 2 {
		t.Fatalf("metrics list %d queries, want 2", len(m.Queries))
	}
	for _, qm := range m.Queries {
		if qm.Shared != 2 || qm.Private != 1 {
			t.Fatalf("%s: shared=%d private=%d, want 2/1", qm.Name, qm.Shared, qm.Private)
		}
	}
	if _, done, _ := q1.snapshot(); done != 1 {
		t.Fatal("q1 never completed")
	}
	els2, done, _ := q2.snapshot()
	if done != 1 {
		t.Fatal("q2 never completed")
	}
	if len(els2) == 0 {
		t.Fatal("live-added query over shared aggregate produced nothing")
	}
}
